// Package boundedalloc implements the thermolint analyzer that keeps
// decoded sizes away from allocations and slice bounds until they are
// clamped.
//
// Taint sources are integers decoded from wire or file input: strconv.Atoi/
// ParseInt/ParseUint and the encoding/binary readers (ReadUvarint,
// ReadVarint, the ByteOrder UintNN accessors). Taint propagates through
// assignments, arithmetic, and conversions, and — via the per-package call
// graph — into the parameters of functions that are handed a still-unclamped
// value at any call site.
//
// A tainted value is clamped once the function compares it against a
// non-zero bound (`if n > 1<<16 { ... }`, `len(xs) > n`); signed values
// additionally need a sign guard (a comparison against 0), because
// arithmetic like `n + 1` can overflow a MaxInt into a negative that then
// defeats a pure upper bound. Sinks are make() sizes/capacities and slice
// expression bounds: a panic or multi-gigabyte allocation reachable from a
// corrupt header or a hostile Last-Event-ID is a denial of service, so the
// clamp must dominate the allocation, not the happy path.
package boundedalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"thermometer/internal/analysis"
)

// Scope selects the import paths checked. Tests override it to target
// testdata packages.
var Scope = regexp.MustCompile(`^thermometer/internal/`)

// Analyzer is the boundedalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "boundedalloc",
	Doc: "make sizes and slice bounds derived from decoded wire/file input " +
		"must pass through a clamp (upper bound, plus a sign guard for " +
		"signed values) before use",
	Run: run,
}

// fnState is the per-function taint and guard context.
type fnState struct {
	decl    *ast.FuncDecl
	tainted map[types.Object]bool
	zeroCmp map[types.Object]bool // compared against 0 somewhere
	bound   map[types.Object]bool // compared against a non-zero bound somewhere
}

func run(pass *analysis.Pass) error {
	if !Scope.MatchString(pass.Pkg.Path()) {
		return nil
	}
	states := make(map[*ast.FuncDecl]*fnState)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			st := &fnState{
				decl:    decl,
				tainted: make(map[types.Object]bool),
				zeroCmp: make(map[types.Object]bool),
				bound:   make(map[types.Object]bool),
			}
			collectGuards(pass, st)
			propagate(pass, st)
			states[decl] = st
		}
	}

	// Cross-function rounds: hand taint to callee parameters wherever a call
	// site passes a still-unclamped decoded value, until no round changes
	// anything (bounded: each round must taint at least one new parameter).
	g := pass.CallGraph()
	for round := 0; round < len(states)+1; round++ {
		changed := false
		for _, st := range states {
			node := g.Node(pass.FuncFor(st.decl))
			if node == nil {
				continue
			}
			for _, site := range node.Calls {
				callee := site.Callee.Decl
				cst := states[callee]
				if cst == nil {
					continue
				}
				params := paramObjs(pass, callee)
				for i, arg := range site.Call.Args {
					if i >= len(params) || params[i] == nil {
						continue
					}
					if taintedExpr(pass, st, arg) && !cst.tainted[params[i]] {
						cst.tainted[params[i]] = true
						changed = true
					}
				}
			}
		}
		if !changed {
			break
		}
		for _, st := range states {
			propagate(pass, st)
		}
	}

	for _, st := range states {
		reportSinks(pass, st)
	}
	return nil
}

// paramObjs flattens a declaration's parameter objects in signature order.
func paramObjs(pass *analysis.Pass, decl *ast.FuncDecl) []types.Object {
	var out []types.Object
	for _, fld := range decl.Type.Params.List {
		if len(fld.Names) == 0 {
			out = append(out, nil) // unnamed: nothing can read it
			continue
		}
		for _, name := range fld.Names {
			out = append(out, pass.Info.Defs[name])
		}
	}
	return out
}

// collectGuards records, flow-insensitively, which variables the function
// compares against zero and which against a real bound. Direction is
// ignored on purpose: both `if n > LIMIT { reject }` and `if n < limit {
// use }` appear in this codebase, and distinguishing them would need path
// sensitivity for little gain — the failure mode is a missed finding only
// when a comparison exists but guards nothing, which review catches.
func collectGuards(pass *analysis.Pass, st *fnState) {
	ast.Inspect(st.decl.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		default:
			return true
		}
		note := func(side, other ast.Expr) {
			id, ok := ast.Unparen(side).(*ast.Ident)
			if !ok {
				return
			}
			obj := pass.Info.Uses[id]
			if obj == nil {
				return
			}
			if isZeroLit(other) {
				st.zeroCmp[obj] = true
			} else {
				st.bound[obj] = true
			}
		}
		note(be.X, be.Y)
		note(be.Y, be.X)
		return true
	})
}

func isZeroLit(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && lit.Kind == token.INT && lit.Value == "0"
}

// propagate runs local taint to fixpoint: sources and already-tainted
// operands flow through assignments.
func propagate(pass *analysis.Pass, st *fnState) {
	for {
		changed := false
		mark := func(lhs ast.Expr, rhsTainted bool) {
			if !rhsTainted {
				return
			}
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				return
			}
			obj := pass.Info.Defs[id]
			if obj == nil {
				obj = pass.Info.Uses[id]
			}
			if obj != nil && !st.tainted[obj] {
				st.tainted[obj] = true
				changed = true
			}
		}
		ast.Inspect(st.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
					// n, err := strconv.Atoi(x): the int is result 0.
					if isSourceCall(pass, n.Rhs[0]) {
						mark(n.Lhs[0], true)
					}
					return true
				}
				for i := range n.Lhs {
					if i < len(n.Rhs) {
						mark(n.Lhs[i], taintedExpr(pass, st, n.Rhs[i]))
					}
				}
			case *ast.ValueSpec:
				for i := range n.Names {
					if i < len(n.Values) {
						mark(n.Names[i], taintedExpr(pass, st, n.Values[i]))
					}
				}
			}
			return true
		})
		if !changed {
			return
		}
	}
}

// taintedExpr reports whether e carries a decoded value that has not been
// clamped: a source call, or any identifier that is tainted and unclamped.
func taintedExpr(pass *analysis.Pass, st *fnState, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if isSourceCall(pass, n) {
				found = true
				return false
			}
		case *ast.Ident:
			obj := pass.Info.Uses[n]
			if obj != nil && st.tainted[obj] && !clamped(st, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// clamped: an upper-bound comparison exists, and the value cannot be
// negative (unsigned, or sign-guarded against 0).
func clamped(st *fnState, obj types.Object) bool {
	if !st.bound[obj] {
		return false
	}
	if st.zeroCmp[obj] {
		return true
	}
	if basic, ok := obj.Type().Underlying().(*types.Basic); ok {
		return basic.Info()&types.IsUnsigned != 0
	}
	return false
}

// isSourceCall recognizes the decoded-integer producers.
func isSourceCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := analysis.CalleeOf(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "strconv":
		switch fn.Name() {
		case "Atoi", "ParseInt", "ParseUint":
			return true
		}
	case "encoding/binary":
		switch fn.Name() {
		case "ReadUvarint", "ReadVarint", "Uint16", "Uint32", "Uint64":
			return true
		}
	}
	return false
}

// reportSinks flags make() sizes and slice bounds fed an unclamped decoded
// value.
func reportSinks(pass *analysis.Pass, st *fnState) {
	ast.Inspect(st.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			id, ok := ast.Unparen(n.Fun).(*ast.Ident)
			if !ok || id.Name != "make" || pass.Info.Uses[id] != nil && pass.Info.Uses[id].Pkg() != nil {
				return true
			}
			for _, arg := range n.Args[1:] {
				if taintedExpr(pass, st, arg) {
					pass.Reportf(arg.Pos(),
						"make size %s derives from decoded input with no clamp before allocation; bound it (and sign-guard signed values) first",
						types.ExprString(arg))
				}
			}
		case *ast.SliceExpr:
			for _, bound := range []ast.Expr{n.Low, n.High, n.Max} {
				if bound != nil && taintedExpr(pass, st, bound) {
					pass.Reportf(bound.Pos(),
						"slice bound %s derives from decoded input with no clamp; a hostile value panics or over-allocates here",
						types.ExprString(bound))
				}
			}
		}
		return true
	})
}
