package boundedalloc

import (
	"regexp"
	"testing"

	"thermometer/internal/analysis/analysistest"
)

func scoped(t *testing.T, re string) {
	t.Helper()
	old := Scope
	Scope = regexp.MustCompile(re)
	t.Cleanup(func() { Scope = old })
}

func TestBoundedAlloc(t *testing.T) {
	scoped(t, `^batest$`)
	analysistest.Run(t, "testdata", Analyzer, "batest")
}

func TestBoundedAllocClean(t *testing.T) {
	scoped(t, `^baclean$`)
	analysistest.Run(t, "testdata", Analyzer, "baclean")
}
