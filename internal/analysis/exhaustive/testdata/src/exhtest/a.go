// Package exhtest exercises the exhaustive analyzer: switches over enum
// types must cover every constant or carry a default case.
package exhtest

// Kind is an enum with a cardinality sentinel.
type Kind int

const (
	KindA Kind = iota
	KindB
	KindC
	numKinds // sentinel: excluded from coverage
)

var _ = numKinds

func bad(k Kind) int {
	switch k { // want `switch over exhtest.Kind is not exhaustive: missing KindC`
	case KindA:
		return 1
	case KindB:
		return 2
	}
	return 0
}

func goodFull(k Kind) int {
	switch k {
	case KindA, KindB:
		return 1
	case KindC:
		return 3
	}
	return 0
}

func goodDefault(k Kind) int {
	switch k {
	case KindA:
		return 1
	default:
		return 0
	}
}

// Suppressed with a documented reason.
func suppressed(k Kind) int {
	//lint:allow exhaustive only KindA matters on this diagnostic path
	switch k {
	case KindA:
		return 1
	}
	return 0
}

// Switches over non-enum types are never audited.
func goodInt(n int) int {
	switch n {
	case 0:
		return 1
	}
	return 0
}
