// Package exhaustive implements the thermolint analyzer that checks enum
// switches for completeness.
//
// Temperature categories, event kinds, branch types, and probe kinds are
// all defined-integer-type enums; a switch over one that silently ignores a
// constant is how new event kinds fall out of telemetry and new branch
// types fall out of the simulator. A switch over an enum type must either
// cover every constant of the type or carry a default case.
//
// Constants named with a num/max prefix (numEventKinds, numBranchTypes) are
// treated as cardinality sentinels, not values.
package exhaustive

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"thermometer/internal/analysis"
)

// ScopeTypes restricts the check to enums declared in matching packages
// (module-local by default; stdlib enums are never audited).
var ScopeTypes = regexp.MustCompile(`^thermometer/`)

// sentinelRE matches cardinality sentinels that are not real enum values.
var sentinelRE = regexp.MustCompile(`^(num|Num|max|Max|sentinel|Sentinel)`)

// Analyzer is the exhaustive pass.
var Analyzer = &analysis.Analyzer{
	Name: "exhaustive",
	Doc: "switches over enum types (defined integer types with declared " +
		"constants) must cover every constant or have a default case",
	Run: run,
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok || sw.Tag == nil {
			return true
		}
		t := pass.TypeOf(sw.Tag)
		if t == nil {
			return true
		}
		named, ok := types.Unalias(t).(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return true
		}
		if !ScopeTypes.MatchString(named.Obj().Pkg().Path()) {
			return true
		}
		basic, ok := named.Underlying().(*types.Basic)
		if !ok || basic.Info()&types.IsInteger == 0 {
			return true
		}
		enum := enumConstants(named)
		if len(enum) < 2 {
			return true
		}

		covered := make(map[string]bool)
		for _, clause := range sw.Body.List {
			cc, ok := clause.(*ast.CaseClause)
			if !ok {
				continue
			}
			if cc.List == nil {
				return true // default case present: partial coverage is fine
			}
			for _, e := range cc.List {
				if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil {
					covered[tv.Value.ExactString()] = true
				}
			}
		}

		var missing []string
		for _, c := range enum {
			if !covered[c.Val().ExactString()] {
				missing = append(missing, c.Name())
			}
		}
		if len(missing) > 0 {
			sort.Strings(missing)
			pass.Reportf(sw.Switch,
				"switch over %s.%s is not exhaustive: missing %s (add the cases or a default)",
				named.Obj().Pkg().Name(), named.Obj().Name(), strings.Join(missing, ", "))
		}
		return true
	})
	return nil
}

// enumConstants returns the package-level constants of exactly the named
// type, excluding cardinality sentinels, deduplicated by value.
func enumConstants(named *types.Named) []*types.Const {
	scope := named.Obj().Pkg().Scope()
	seen := make(map[string]bool)
	var out []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		if sentinelRE.MatchString(c.Name()) || c.Name() == "_" {
			continue
		}
		key := c.Val().ExactString()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		vi, _ := constant.Int64Val(out[i].Val())
		vj, _ := constant.Int64Val(out[j].Val())
		return vi < vj
	})
	return out
}
