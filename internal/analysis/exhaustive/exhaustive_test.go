package exhaustive

import (
	"regexp"
	"testing"

	"thermometer/internal/analysis/analysistest"
)

func TestExhaustive(t *testing.T) {
	defer func(old *regexp.Regexp) { ScopeTypes = old }(ScopeTypes)
	ScopeTypes = regexp.MustCompile(`^exhtest$`)
	analysistest.Run(t, "testdata", Analyzer, "exhtest")
}
