// Package observernil implements the thermolint analyzer that enforces the
// telemetry observer contract: a nil *telemetry.Observer (or nil collector
// inside one) disables instrumentation, and the simulator pays exactly one
// pointer check per block for it. Every call to a probe method on such a
// possibly-nil value must therefore be dominated by a nil check — a missing
// guard is a latent panic on every untelemetered run.
//
// The analyzer flags calls whose receiver has a guarded pointer type unless
// one of these holds:
//
//   - the receiver is the enclosing method's receiver or a function
//     parameter (boundary functions document non-nil arguments; the guard
//     belongs at their call sites, where the value originates);
//   - the receiver is a local variable that is provably initialized from a
//     constructor call or composite literal on every assignment;
//   - the call is dominated by `recv != nil` (directly, via an if/else on
//     `recv == nil`, or via an earlier early-return `if recv == nil`).
package observernil

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"thermometer/internal/analysis"
)

// GuardedTypes lists the pointer-to-type receivers whose methods require a
// dominating nil check, as "importpath.TypeName". Tests override it to
// target testdata types.
var GuardedTypes = []string{
	"thermometer/internal/telemetry.Observer",
	"thermometer/internal/telemetry.Registry",
	"thermometer/internal/telemetry.EpochSampler",
	"thermometer/internal/telemetry.Tracer",
	"thermometer/internal/core.observerState",
	"thermometer/internal/attribution.Recorder",
}

// Analyzer is the observernil pass.
var Analyzer = &analysis.Analyzer{
	Name: "observernil",
	Doc: "calls to telemetry observer probe methods must be dominated by a " +
		"nil check (nil observer = instrumentation disabled, one pointer " +
		"check per block)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	guarded := make(map[string]bool, len(GuardedTypes))
	for _, g := range GuardedTypes {
		guarded[g] = true
	}
	pass.InspectStack(func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		// Method call only (not package-qualified function).
		if _, ok := pass.Info.Selections[sel]; !ok {
			return true
		}
		recv := sel.X
		tname, ok := guardedTypeName(pass, recv, guarded)
		if !ok {
			return true
		}
		if exemptReceiver(pass, recv, stack) {
			return true
		}
		if dominatedByNilCheck(recv, call, stack) {
			return true
		}
		pass.Reportf(call.Pos(),
			"call to (%s).%s on possibly-nil %s is not dominated by a nil check; guard with `if %s != nil` (observer contract: nil disables instrumentation)",
			tname, sel.Sel.Name, types.ExprString(recv), types.ExprString(recv))
		return true
	})
	return nil
}

// guardedTypeName reports whether recv's static type is a pointer to a
// guarded named type, returning the display name.
func guardedTypeName(pass *analysis.Pass, recv ast.Expr, guarded map[string]bool) (string, bool) {
	t := pass.TypeOf(recv)
	if t == nil {
		return "", false
	}
	ptr, ok := types.Unalias(t).(*types.Pointer)
	if !ok {
		return "", false
	}
	named, ok := types.Unalias(ptr.Elem()).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	if !guarded[full] {
		return "", false
	}
	short := named.Obj().Pkg().Name() + "." + named.Obj().Name()
	return "*" + short, true
}

// exemptReceiver implements the receiver/parameter/definitely-assigned
// exemptions. Non-ident receivers rooted in a call (constructor chaining)
// are exempt; field chains are not.
func exemptReceiver(pass *analysis.Pass, recv ast.Expr, stack []ast.Node) bool {
	switch e := ast.Unparen(recv).(type) {
	case *ast.Ident:
		obj, ok := pass.Info.Uses[e].(*types.Var)
		if !ok {
			return false
		}
		// A closure capturing an outer function's parameter or receiver
		// inherits its non-nil boundary contract, so check every enclosing
		// function, innermost first.
		outermost := ast.Node(nil)
		for i := len(stack) - 1; i >= 0; i-- {
			switch stack[i].(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				if isParamOrReceiver(pass, obj, stack[i]) {
					return true
				}
				outermost = stack[i]
			}
		}
		if outermost == nil {
			return false
		}
		return definitelyAssigned(pass, obj, outermost)
	case *ast.CallExpr:
		return true // telemetry.New(...).Report(...): constructor result
	case *ast.SelectorExpr:
		return false // field chain like obs.Epochs: needs its own guard
	default:
		return false
	}
}

func isParamOrReceiver(pass *analysis.Pass, obj *types.Var, fn ast.Node) bool {
	var recv *ast.FieldList
	var params *ast.FieldList
	switch f := fn.(type) {
	case *ast.FuncDecl:
		recv, params = f.Recv, f.Type.Params
	case *ast.FuncLit:
		params = f.Type.Params
	}
	for _, fl := range []*ast.FieldList{recv, params} {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if pass.Info.Defs[name] == obj {
					return true
				}
			}
		}
	}
	return false
}

// definitelyAssigned reports whether every binding of obj inside fn is a
// constructor-shaped expression (address of a composite literal, a call, or
// new(...)), and the variable is never declared without an initializer.
func definitelyAssigned(pass *analysis.Pass, obj *types.Var, fn ast.Node) bool {
	sawAssign := false
	allNonNil := true
	ast.Inspect(fn, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if pass.Info.Defs[id] != obj && pass.Info.Uses[id] != obj {
					continue
				}
				sawAssign = true
				// Tuple assignment `a, b := f()`: one RHS call covers all.
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
				}
				if !nonNilExpr(rhs) {
					allNonNil = false
				}
			}
		case *ast.ValueSpec:
			for _, id := range n.Names {
				if pass.Info.Defs[id] != obj {
					continue
				}
				sawAssign = true
				if len(n.Values) == 0 {
					allNonNil = false // `var x *T` starts nil
				} else {
					for _, v := range n.Values {
						if !nonNilExpr(v) {
							allNonNil = false
						}
					}
				}
			}
		}
		return true
	})
	return sawAssign && allNonNil
}

func nonNilExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		return true // constructors return non-nil by convention
	case *ast.UnaryExpr:
		return e.Op == token.AND // &T{...}
	case nil:
		return false
	default:
		return false
	}
}

// dominatedByNilCheck reports whether the call is dominated by a nil check
// of recv (matched structurally via go/types.ExprString).
func dominatedByNilCheck(recv ast.Expr, call *ast.CallExpr, stack []ast.Node) bool {
	want := types.ExprString(recv)

	// Pattern 1: an enclosing `if recv != nil { ...call... }` (call in Body)
	// or `if recv == nil { ... } else { ...call... }` (call in Else).
	for i := len(stack) - 2; i >= 0; i-- {
		ifStmt, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		child := stack[i+1]
		if child == ifStmt.Body && condChecksNonNil(ifStmt.Cond, want) {
			return true
		}
		if child == ifStmt.Else && condChecksNil(ifStmt.Cond, want) {
			return true
		}
	}

	// Pattern 1b: short-circuit domination inside one expression:
	// `recv != nil && recv.M()` or `recv == nil || recv.M()`.
	for i := len(stack) - 2; i >= 0; i-- {
		bin, ok := stack[i].(*ast.BinaryExpr)
		if !ok {
			continue
		}
		if stack[i+1] != ast.Node(bin.Y) {
			continue
		}
		if bin.Op == token.LAND && condChecksNonNil(bin.X, want) {
			return true
		}
		if bin.Op == token.LOR && condChecksNil(bin.X, want) {
			return true
		}
	}

	// Pattern 2: an earlier early-exit guard in an enclosing block:
	//   if recv == nil { return }  (or continue/break/panic)
	for i := len(stack) - 2; i >= 0; i-- {
		block, ok := stack[i].(*ast.BlockStmt)
		if !ok {
			continue
		}
		containing := stack[i+1].(ast.Stmt)
		for _, s := range block.List {
			if s == containing {
				break
			}
			ifStmt, ok := s.(*ast.IfStmt)
			if !ok || ifStmt.Else != nil {
				continue
			}
			if condChecksNil(ifStmt.Cond, want) && terminates(ifStmt.Body) {
				return true
			}
		}
	}
	return false
}

// condChecksNonNil reports whether cond contains a `want != nil` conjunct.
func condChecksNonNil(cond ast.Expr, want string) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		if e.Op == token.LAND {
			return condChecksNonNil(e.X, want) || condChecksNonNil(e.Y, want)
		}
		return e.Op == token.NEQ && comparesToNil(e, want)
	}
	return false
}

// condChecksNil reports whether cond contains a `want == nil` disjunct.
func condChecksNil(cond ast.Expr, want string) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		if e.Op == token.LOR {
			return condChecksNil(e.X, want) || condChecksNil(e.Y, want)
		}
		return e.Op == token.EQL && comparesToNil(e, want)
	}
	return false
}

func comparesToNil(e *ast.BinaryExpr, want string) bool {
	isNil := func(x ast.Expr) bool {
		id, ok := ast.Unparen(x).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	if isNil(e.Y) && types.ExprString(ast.Unparen(e.X)) == want {
		return true
	}
	if isNil(e.X) && types.ExprString(ast.Unparen(e.Y)) == want {
		return true
	}
	return false
}

// terminates reports whether a guard body unconditionally leaves the
// enclosing scope (return, branch, panic, or a fatal call).
func terminates(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return last.Tok == token.CONTINUE || last.Tok == token.BREAK || last.Tok == token.GOTO
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			return fun.Name == "panic" || strings.HasPrefix(fun.Name, "fatal")
		case *ast.SelectorExpr:
			name := fun.Sel.Name
			return name == "Fatal" || name == "Fatalf" || name == "Exit" || name == "Panic" || name == "Panicf"
		}
	}
	return false
}
