// Package obsniltest exercises the observernil analyzer: probe-method calls
// on possibly-nil guarded pointers must be dominated by a nil check.
package obsniltest

// Observer is the guarded type (tests point GuardedTypes at it).
type Observer struct{ n int }

// New returns a ready observer.
func New() *Observer { return &Observer{} }

// Probe and Count are probe methods.
func (o *Observer) Probe()     { o.n++ }
func (o *Observer) Count() int { return o.n }

// Holder carries a possibly-nil observer, like core.Config.
type Holder struct{ Obs *Observer }

func bad(h Holder) {
	h.Obs.Probe() // want `call to \(\*obsniltest.Observer\).Probe on possibly-nil h.Obs is not dominated by a nil check`
}

func badAfterWrongGuard(h, other Holder) {
	if other.Obs != nil {
		h.Obs.Probe() // want `not dominated by a nil check`
	}
}

func goodIf(h Holder) {
	if h.Obs != nil {
		h.Obs.Probe()
	}
}

func goodElse(h Holder) {
	if h.Obs == nil {
		return
	} else {
		h.Obs.Probe()
	}
}

func goodShortCircuit(h Holder) bool {
	return h.Obs != nil && h.Obs.Count() > 0
}

func goodOrGuard(h Holder) bool {
	return h.Obs == nil || h.Obs.Count() > 0
}

func goodEarlyReturn(h Holder) int {
	if h.Obs == nil {
		return 0
	}
	h.Obs.Probe()
	return h.Obs.Count()
}

// Parameters carry a non-nil boundary contract: the guard belongs at call
// sites.
func goodParam(o *Observer) {
	o.Probe()
}

// Closures inherit the enclosing function's parameter contract.
func goodClosureOverParam(o *Observer) func() int {
	return func() int { return o.Count() }
}

// Locals definitely assigned from a constructor are non-nil.
func goodConstructorLocal() int {
	o := New()
	o.Probe()
	return o.Count()
}

// Constructor chaining is exempt by shape.
func goodChained() int {
	return New().Count()
}

func badDeclaredNil() {
	var o *Observer
	o.Probe() // want `possibly-nil o is not dominated by a nil check`
}
