// Package obsniltest exercises the observernil analyzer: probe-method calls
// on possibly-nil guarded pointers must be dominated by a nil check.
package obsniltest

// Observer is the guarded type (tests point GuardedTypes at it).
type Observer struct{ n int }

// New returns a ready observer.
func New() *Observer { return &Observer{} }

// Probe and Count are probe methods.
func (o *Observer) Probe()     { o.n++ }
func (o *Observer) Count() int { return o.n }

// Holder carries a possibly-nil observer, like core.Config.
type Holder struct{ Obs *Observer }

func bad(h Holder) {
	h.Obs.Probe() // want `call to \(\*obsniltest.Observer\).Probe on possibly-nil h.Obs is not dominated by a nil check`
}

func badAfterWrongGuard(h, other Holder) {
	if other.Obs != nil {
		h.Obs.Probe() // want `not dominated by a nil check`
	}
}

func goodIf(h Holder) {
	if h.Obs != nil {
		h.Obs.Probe()
	}
}

func goodElse(h Holder) {
	if h.Obs == nil {
		return
	} else {
		h.Obs.Probe()
	}
}

func goodShortCircuit(h Holder) bool {
	return h.Obs != nil && h.Obs.Count() > 0
}

func goodOrGuard(h Holder) bool {
	return h.Obs == nil || h.Obs.Count() > 0
}

func goodEarlyReturn(h Holder) int {
	if h.Obs == nil {
		return 0
	}
	h.Obs.Probe()
	return h.Obs.Count()
}

// Parameters carry a non-nil boundary contract: the guard belongs at call
// sites.
func goodParam(o *Observer) {
	o.Probe()
}

// Closures inherit the enclosing function's parameter contract.
func goodClosureOverParam(o *Observer) func() int {
	return func() int { return o.Count() }
}

// Locals definitely assigned from a constructor are non-nil.
func goodConstructorLocal() int {
	o := New()
	o.Probe()
	return o.Count()
}

// Constructor chaining is exempt by shape.
func goodChained() int {
	return New().Count()
}

func badDeclaredNil() {
	var o *Observer
	o.Probe() // want `possibly-nil o is not dominated by a nil check`
}

// Recorder mirrors attribution.Recorder: a second guarded type carried as an
// optional field next to the observer, fed from the same probe stream.
type Recorder struct{ n int }

// OnEvict and SampleHeat are attribution probe methods.
func (r *Recorder) OnEvict()    { r.n++ }
func (r *Recorder) SampleHeat() { r.n++ }

// probeState mirrors core.observerState: obs is checked once at attach time,
// att may stay nil for observer-only runs.
type probeState struct {
	obs *Observer
	att *Recorder
}

func badAttribProbe(s *probeState) {
	s.att.OnEvict() // want `call to \(\*obsniltest.Recorder\).OnEvict on possibly-nil s.att is not dominated by a nil check`
}

func badAttribUnderObserverGuard(s *probeState) {
	// Guarding the observer does not guard the recorder.
	if s.obs != nil {
		s.att.SampleHeat() // want `not dominated by a nil check`
	}
}

func goodAttribProbe(s *probeState) {
	if s.att != nil {
		s.att.OnEvict()
	}
}

func goodAttribEpochTick(s *probeState) {
	// The real wiring: heat sampling rides the epoch tick inside the
	// observer path, with its own recorder guard.
	if s.obs != nil {
		s.obs.Probe()
		if s.att != nil {
			s.att.SampleHeat()
		}
	}
}
