// Package obsnilx is a multi-file fixture: the guarded type and its holder
// live in this file, the call sites under test in use.go. The analyzer must
// connect them across the file boundary.
package obsnilx

// Gauge is the guarded type (tests point GuardedTypes at it).
type Gauge struct{ v int }

// NewGauge returns a ready gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Bump and Value are probe methods.
func (g *Gauge) Bump()      { g.v++ }
func (g *Gauge) Value() int { return g.v }

// Panel carries a possibly-nil gauge, like core.Config carries its
// observer.
type Panel struct{ G *Gauge }
