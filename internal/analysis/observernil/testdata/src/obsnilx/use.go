package obsnilx

// The types referenced here are declared in types.go: every diagnostic in
// this file is a cross-file regression for the analyzer and the test
// harness alike.

func bad(p Panel) {
	p.G.Bump() // want `call to \(\*obsnilx.Gauge\).Bump on possibly-nil p.G is not dominated by a nil check`
}

func good(p Panel) int {
	if p.G == nil {
		return 0
	}
	p.G.Bump()
	return p.G.Value()
}

func goodConstructed() int {
	g := NewGauge()
	g.Bump()
	return g.Value()
}
