// Package obsnilimp is a multi-package fixture: the guarded type is
// declared in the imported obsnilx package, so the analyzer must resolve
// the contract across the import boundary.
package obsnilimp

import "obsnilx"

// Board embeds a possibly-nil gauge from the other package.
type Board struct{ G *obsnilx.Gauge }

func bad(b Board) {
	b.G.Bump() // want `call to \(\*obsnilx.Gauge\).Bump on possibly-nil b.G is not dominated by a nil check`
}

func good(b Board) int {
	if b.G == nil {
		return 0
	}
	b.G.Bump()
	return b.G.Value()
}

func goodParam(g *obsnilx.Gauge) {
	g.Bump() // parameters carry the non-nil boundary contract
}
