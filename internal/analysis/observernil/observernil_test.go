package observernil

import (
	"testing"

	"thermometer/internal/analysis/analysistest"
)

func TestObservernil(t *testing.T) {
	defer func(old []string) { GuardedTypes = old }(GuardedTypes)
	GuardedTypes = []string{"obsniltest.Observer", "obsniltest.Recorder"}
	analysistest.Run(t, "testdata", Analyzer, "obsniltest")
}

// TestObservernilCrossFile runs one analysistest invocation over a
// multi-file package (obsnilx: guarded type in types.go, call sites in
// use.go) plus a second package importing it (obsnilimp), pinning both the
// analyzer's and the harness's cross-file/cross-package behavior.
func TestObservernilCrossFile(t *testing.T) {
	defer func(old []string) { GuardedTypes = old }(GuardedTypes)
	GuardedTypes = []string{"obsnilx.Gauge"}
	analysistest.Run(t, "testdata", Analyzer, "obsnilx", "obsnilimp")
}
