package observernil

import (
	"testing"

	"thermometer/internal/analysis/analysistest"
)

func TestObservernil(t *testing.T) {
	defer func(old []string) { GuardedTypes = old }(GuardedTypes)
	GuardedTypes = []string{"obsniltest.Observer", "obsniltest.Recorder"}
	analysistest.Run(t, "testdata", Analyzer, "obsniltest")
}
