// Package analysistest runs an analyzer over GOPATH-style testdata packages
// and checks its diagnostics against `// want "regexp"` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on top of the in-tree
// framework.
//
// Layout: <testdata>/src/<importpath>/*.go. A line expecting a diagnostic
// carries a trailing comment `// want "re"` (multiple quoted regexps allowed
// for multiple diagnostics on one line). Every diagnostic must be wanted and
// every want must be matched. //lint:allow suppressions are honored, so
// testdata can also demonstrate the suppression format.
//
// Fixtures may span multiple files per package, and Run accepts multiple
// package paths in one call; testdata packages can import each other (the
// loader resolves imports against <testdata>/src), so cross-file and
// cross-package analyzer behavior is testable in a single invocation.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"thermometer/internal/analysis"
)

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"|` + "`[^`]*`")

// Run loads each package path from testdata/src and checks the analyzer's
// findings against the want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	loader := analysis.NewTestdataLoader(filepath.Join(testdata, "src"))
	var pkgs []*analysis.Package
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, loader.Fset, pkgs)

	for _, d := range diags {
		key := posKey{d.File, d.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", a.Name, d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: %s:%d: expected diagnostic matching %q, got none",
					a.Name, key.file, key.line, w.re)
			}
		}
	}
}

type posKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

func collectWants(t *testing.T, fset *token.FileSet, pkgs []*analysis.Package) map[posKey][]*want {
	t.Helper()
	wants := make(map[posKey][]*want)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					for _, q := range quotedRE.FindAllString(m[1], -1) {
						pattern, err := unquote(q)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
						}
						re, err := regexp.Compile(pattern)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pattern, err)
						}
						key := posKey{pos.Filename, pos.Line}
						wants[key] = append(wants[key], &want{re: re})
					}
				}
			}
		}
	}
	return wants
}

func unquote(q string) (string, error) {
	if len(q) >= 2 && q[0] == '`' {
		return q[1 : len(q)-1], nil
	}
	s, err := strconv.Unquote(q)
	if err != nil {
		return "", fmt.Errorf("unquoting %s: %w", q, err)
	}
	return s, nil
}
