// Package analysis is a miniature, dependency-free counterpart of
// golang.org/x/tools/go/analysis: it defines the Analyzer/Pass/Diagnostic
// vocabulary, a source-level package loader, and a driver that runs a suite
// of analyzers over a module and filters //lint:allow suppressions.
//
// It exists because this repository is built in hermetic environments with
// no module proxy access, so the real x/tools framework cannot be fetched;
// everything here uses only the standard library (go/parser for syntax,
// go/types with the "source" importer for type information). The API shape
// deliberately mirrors x/tools so analyzers can be ported either way with
// minimal edits.
//
// The domain analyzers themselves live in sibling packages (detrange,
// noambient, observernil, policycontract, exhaustive) and are assembled into
// a suite by cmd/thermolint.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one static check. Run inspects a single type-checked
// package and reports findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow <name> suppression comments.
	Name string
	// Doc is a one-paragraph description shown by `thermolint -help`.
	Doc string
	// Run executes the check over one package.
	Run func(*Pass) error
}

// A Diagnostic is one finding, located by resolved file position.
type Diagnostic struct {
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Column   int            `json:"column"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Column, d.Analyzer, d.Message)
}

// A Pass connects one Analyzer to one package: syntax, type information,
// and the diagnostic sink.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
	pkg   *Package   // owning package, for the shared call-graph cache
	facts *FactStore // shared across the packages of one Run
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Column:   position.Column,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// Inspect walks every file of the package in depth-first order.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// InspectStack walks every file keeping the path from the file root to the
// current node. stack[len(stack)-1] is the node itself; fn's return value
// controls descent into children.
func (p *Pass) InspectStack(fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if !fn(n, stack) {
				// ast.Inspect only delivers the closing nil when it
				// descended, so pop immediately when skipping children.
				stack = stack[:len(stack)-1]
				return false
			}
			return true
		})
	}
}
