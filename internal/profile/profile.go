// Package profile turns Belady profiling results into the temperature hints
// Thermometer injects into branch instructions (§3.3 of the paper).
//
// A HintTable maps branch PCs to small category values (hotter = larger).
// In hardware the category travels in reserved bits of the branch encoding;
// here it travels alongside the simulated binary as a table the simulator
// consults at BTB insertion, which is functionally identical.
package profile

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"thermometer/internal/belady"
	"thermometer/internal/detmap"
	"thermometer/internal/trace"
)

// Config controls temperature classification.
type Config struct {
	// Thresholds are ascending hit-to-taken boundaries in [0,1]. A branch
	// with ratio y gets category i where i is the number of thresholds
	// strictly below y... precisely: category 0 iff y <= Thresholds[0],
	// category i iff Thresholds[i-1] < y <= Thresholds[i], and the hottest
	// category iff y > Thresholds[last]. len(Thresholds)+1 categories.
	Thresholds []float64
	// DefaultCategory is assigned to branches absent from the profile
	// (e.g. code paths not exercised by the training input). The middle
	// category keeps unknown branches insertable without letting them
	// displace profiled-hot entries.
	DefaultCategory uint8
}

// DefaultConfig returns the paper's empirically best configuration: three
// categories (cold/warm/hot) split at 50% and 80% (§3.3).
func DefaultConfig() Config {
	return Config{Thresholds: []float64{0.50, 0.80}, DefaultCategory: 1}
}

// Categories returns the number of temperature categories.
func (c Config) Categories() int { return len(c.Thresholds) + 1 }

// HintBits returns the number of bits needed to encode a category.
func (c Config) HintBits() int {
	bits := 0
	for n := c.Categories() - 1; n > 0; n >>= 1 {
		bits++
	}
	if bits == 0 {
		bits = 1
	}
	return bits
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if len(c.Thresholds) == 0 {
		return errors.New("profile: need at least one threshold")
	}
	prev := -1.0
	for _, t := range c.Thresholds {
		if t < 0 || t > 1 {
			return fmt.Errorf("profile: threshold %v outside [0,1]", t)
		}
		if t <= prev {
			return fmt.Errorf("profile: thresholds not strictly ascending at %v", t)
		}
		prev = t
	}
	if int(c.DefaultCategory) >= c.Categories() {
		return fmt.Errorf("profile: default category %d out of range (%d categories)",
			c.DefaultCategory, c.Categories())
	}
	return nil
}

// Categorize maps a hit-to-taken ratio to its temperature category.
func (c Config) Categorize(hitToTaken float64) uint8 {
	for i, t := range c.Thresholds {
		if hitToTaken <= t {
			return uint8(i)
		}
	}
	return uint8(len(c.Thresholds))
}

// Named categories for the default 3-category configuration.
const (
	Cold uint8 = 0
	Warm uint8 = 1
	Hot  uint8 = 2
)

// HintTable is the injected profile: branch PC → temperature category.
type HintTable struct {
	Config Config
	Hints  map[uint64]uint8
}

// Build computes the hint table from a Belady profiling result.
func Build(res *belady.Result, cfg Config) (*HintTable, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &HintTable{Config: cfg, Hints: make(map[uint64]uint8, len(res.PerBranch))}
	for _, pc := range detmap.SortedKeys(res.PerBranch) {
		t.Hints[pc] = cfg.Categorize(res.PerBranch[pc].HitToTaken())
	}
	return t, nil
}

// Lookup returns the category for a branch PC, falling back to the
// configured default for unprofiled branches.
func (t *HintTable) Lookup(pc uint64) uint8 {
	if h, ok := t.Hints[pc]; ok {
		return h
	}
	return t.Config.DefaultCategory
}

// Len returns the number of profiled branches.
func (t *HintTable) Len() int { return len(t.Hints) }

// CategoryShares returns, per category, the fraction of profiled branches
// assigned to it (Fig 6's static view).
func (t *HintTable) CategoryShares() []float64 {
	counts := make([]int, t.Config.Categories())
	for _, c := range t.Hints {
		counts[c]++
	}
	out := make([]float64, len(counts))
	if len(t.Hints) == 0 {
		return out
	}
	for i, n := range counts {
		out[i] = float64(n) / float64(len(t.Hints))
	}
	return out
}

// Agreement returns the fraction of PCs present in both tables that share a
// category — the cross-input stability metric the paper reports as 81%.
func Agreement(a, b *HintTable) float64 {
	if a == nil || b == nil {
		return 0
	}
	common, same := 0, 0
	for pc, ca := range a.Hints {
		if cb, ok := b.Hints[pc]; ok {
			common++
			if ca == cb {
				same++
			}
		}
	}
	if common == 0 {
		return 0
	}
	return float64(same) / float64(common)
}

// QuantileThresholds derives k-category thresholds from the profile's
// hit-to-taken distribution so each category holds roughly the same number
// of branches. Used by the Fig 20 category-count sensitivity study.
func QuantileThresholds(res *belady.Result, categories int) []float64 {
	if categories < 2 {
		panic("profile: need at least 2 categories")
	}
	ratios := make([]float64, 0, len(res.PerBranch))
	for _, pc := range detmap.SortedKeys(res.PerBranch) {
		ratios = append(ratios, res.PerBranch[pc].HitToTaken())
	}
	sort.Float64s(ratios)
	out := make([]float64, 0, categories-1)
	prev := -1.0
	for i := 1; i < categories; i++ {
		idx := i * len(ratios) / categories
		if idx >= len(ratios) {
			idx = len(ratios) - 1
		}
		v := ratios[idx]
		if v <= prev {
			// Degenerate distribution: nudge to keep thresholds strictly
			// ascending (categories may end up empty, which is fine).
			v = prev + 1e-9
		}
		out = append(out, v)
		prev = v
	}
	return out
}

// --- serialization ---

const hintMagic = "THRMHNT1"

// Write serializes the hint table.
func (t *HintTable) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(hintMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putU := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putU(uint64(len(t.Config.Thresholds))); err != nil {
		return err
	}
	for _, th := range t.Config.Thresholds {
		// Store thresholds as parts-per-million to stay integer-only.
		if err := putU(uint64(th * 1e6)); err != nil {
			return err
		}
	}
	if err := bw.WriteByte(t.Config.DefaultCategory); err != nil {
		return err
	}
	if err := putU(uint64(len(t.Hints))); err != nil {
		return err
	}
	// Sort PCs for deterministic output and good delta compression.
	pcs := detmap.SortedKeys(t.Hints)
	var prev uint64
	for _, pc := range pcs {
		if err := putU(pc - prev); err != nil {
			return err
		}
		prev = pc
		if err := bw.WriteByte(t.Hints[pc]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadHints parses a hint table written by Write.
func ReadHints(r io.Reader) (*HintTable, error) {
	br := bufio.NewReader(r)
	var m [len(hintMagic)]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("profile: reading magic: %w", err)
	}
	if string(m[:]) != hintMagic {
		return nil, errors.New("profile: bad magic (not a hint file)")
	}
	nth, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nth == 0 || nth > 64 {
		return nil, fmt.Errorf("profile: unreasonable threshold count %d", nth)
	}
	cfg := Config{Thresholds: make([]float64, nth)}
	for i := range cfg.Thresholds {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		cfg.Thresholds[i] = float64(v) / 1e6
	}
	def, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	cfg.DefaultCategory = def
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > 1<<30 {
		return nil, fmt.Errorf("profile: unreasonable hint count %d", n)
	}
	// Cap the preallocation: n comes from the file and a corrupt header must
	// not allocate a gigantic map before the body fails to parse.
	prealloc := n
	if prealloc > 1<<16 {
		prealloc = 1 << 16
	}
	t := &HintTable{Config: cfg, Hints: make(map[uint64]uint8, prealloc)}
	var pc uint64
	for i := uint64(0); i < n; i++ {
		d, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		pc += d
		c, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		if int(c) >= cfg.Categories() {
			return nil, fmt.Errorf("profile: category %d out of range", c)
		}
		t.Hints[pc] = c
	}
	return t, nil
}

// ProfileTrace is the end-to-end offline pipeline (steps 2+3 of Fig 10):
// simulate OPT over the trace's access stream and build the hint table.
func ProfileTrace(tr *trace.Trace, entries, ways int, cfg Config) (*HintTable, *belady.Result, error) {
	res := belady.Profile(tr.AccessStream(), entries, ways)
	ht, err := Build(res, cfg)
	if err != nil {
		return nil, nil, err
	}
	return ht, res, nil
}
