package profile

import (
	"fmt"

	"thermometer/internal/belady"
	"thermometer/internal/trace"
)

// The paper notes (§3.3, §4.2) that the 50%/80% thresholds are empirically
// chosen and configurable per application, and uses two-fold cross
// validation to find better thresholds for the CBP-5 traces where the
// defaults underperform (Fig 17). This file implements that search as part
// of the profiler proper, so cmd/thermprof can run it.

// DefaultThresholdGrid is the candidate threshold space searched by
// CrossValidateThresholds.
func DefaultThresholdGrid() [][]float64 {
	return [][]float64{
		{0.20, 0.50}, {0.30, 0.60}, {0.40, 0.70},
		{0.50, 0.80}, {0.60, 0.90}, {0.70, 0.95},
	}
}

// CrossValidateThresholds picks, from grid, the threshold configuration
// minimizing total Thermometer misses under two-fold cross validation:
// profile the first half of the access stream and evaluate on the second,
// then vice versa. An empty grid uses DefaultThresholdGrid.
//
// The evaluation replays a BTB under Algorithm 1 directly (a miniature of
// package replay, reimplemented here to keep the dependency graph acyclic:
// replay depends on profile).
func CrossValidateThresholds(accesses []trace.Access, entries, ways int, grid [][]float64) (Config, error) {
	if len(grid) == 0 {
		grid = DefaultThresholdGrid()
	}
	if len(accesses) < 4 {
		return DefaultConfig(), nil
	}
	half := len(accesses) / 2
	folds := [2][2][]trace.Access{
		{accesses[:half], accesses[half:]},
		{accesses[half:], accesses[:half]},
	}
	best := DefaultConfig()
	bestMisses := ^uint64(0)
	for _, ths := range grid {
		cfg := Config{Thresholds: ths, DefaultCategory: uint8(len(ths) / 2)}
		if err := cfg.Validate(); err != nil {
			return Config{}, fmt.Errorf("profile: bad grid entry %v: %w", ths, err)
		}
		var misses uint64
		for _, fold := range folds {
			res := belady.Profile(fold[0], entries, ways)
			ht, err := Build(res, cfg)
			if err != nil {
				return Config{}, err
			}
			misses += thermometerMisses(fold[1], entries, ways, ht)
		}
		if misses < bestMisses {
			bestMisses = misses
			best = cfg
		}
	}
	return best, nil
}

// thermometerMisses replays Algorithm 1 over a stream and counts misses.
type cvEntry struct {
	pc    uint64
	temp  uint8
	stamp uint64
}

func thermometerMisses(accesses []trace.Access, entries, ways int, ht *HintTable) uint64 {
	sets := entries / ways
	if sets < 1 {
		sets = 1
	}
	table := make([][]cvEntry, sets)
	var clock, misses uint64
	for i := range accesses {
		a := &accesses[i]
		set := table[a.PC%uint64(sets)]
		clock++
		hit := false
		for w := range set {
			if set[w].pc == a.PC {
				set[w].stamp = clock
				set[w].temp = ht.Lookup(a.PC)
				hit = true
				break
			}
		}
		if hit {
			continue
		}
		misses++
		inTemp := ht.Lookup(a.PC)
		if len(set) < ways {
			table[a.PC%uint64(sets)] = append(set, cvEntry{pc: a.PC, temp: inTemp, stamp: clock})
			continue
		}
		// Algorithm 1: coldest candidate including the incoming branch;
		// bypass when it is uniquely coldest; LRU among ties.
		coldest := inTemp
		for w := range set {
			if set[w].temp < coldest {
				coldest = set[w].temp
			}
		}
		victim := -1
		for w := range set {
			if set[w].temp == coldest && (victim < 0 || set[w].stamp < set[victim].stamp) {
				victim = w
			}
		}
		if victim < 0 {
			continue // uniquely coldest incoming branch: bypass
		}
		set[victim] = cvEntry{pc: a.PC, temp: inTemp, stamp: clock}
	}
	return misses
}

// ThermometerMissesForTest exposes the internal replay for cross-checking
// against package replay in external tests.
func ThermometerMissesForTest(accesses []trace.Access, entries, ways int, ht *HintTable) uint64 {
	return thermometerMisses(accesses, entries, ways, ht)
}
