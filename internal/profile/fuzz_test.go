package profile

import (
	"bytes"
	"testing"
)

// FuzzParseHints feeds arbitrary bytes to the THRMHNT1 decoder. The decoder
// must never panic or over-allocate on corrupt input, and any input it
// accepts must survive a write/read round trip unchanged.
func FuzzParseHints(f *testing.F) {
	// Seed: a small valid hint table under the default 3-category config.
	valid := &HintTable{
		Config: DefaultConfig(),
		Hints:  map[uint64]uint8{0x1000: 0, 0x2000: 1, 0x3000: 2},
	}
	var buf bytes.Buffer
	if err := valid.Write(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("THRMHNT1"))                                     // magic only, truncated header
	f.Add([]byte("THRMHNT1\x02\x00\x00\x00\xff\xff\xff\xff\x0f")) // huge declared count
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		ht, err := ReadHints(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := ht.Write(&out); err != nil {
			t.Fatalf("re-encoding accepted hint table: %v", err)
		}
		ht2, err := ReadHints(&out)
		if err != nil {
			t.Fatalf("re-decoding round trip: %v", err)
		}
		if len(ht.Hints) != len(ht2.Hints) || ht.Config.DefaultCategory != ht2.Config.DefaultCategory {
			t.Fatalf("round trip mismatch: %d/%d hints, default %d/%d",
				len(ht.Hints), len(ht2.Hints), ht.Config.DefaultCategory, ht2.Config.DefaultCategory)
		}
		for pc, c := range ht.Hints {
			if ht2.Hints[pc] != c {
				t.Fatalf("hint %#x mismatch: %d vs %d", pc, c, ht2.Hints[pc])
			}
		}
	})
}
