package profile

import (
	"bytes"
	"testing"

	"thermometer/internal/belady"
	"thermometer/internal/trace"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{Thresholds: nil},
		{Thresholds: []float64{0.5, 0.5}},
		{Thresholds: []float64{0.8, 0.5}},
		{Thresholds: []float64{-0.1}},
		{Thresholds: []float64{1.1}},
		{Thresholds: []float64{0.5}, DefaultCategory: 5},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestCategorize(t *testing.T) {
	c := DefaultConfig() // thresholds 0.5, 0.8
	cases := []struct {
		y    float64
		want uint8
	}{
		{0.0, Cold}, {0.5, Cold}, {0.50001, Warm}, {0.8, Warm},
		{0.80001, Hot}, {1.0, Hot},
	}
	for _, tc := range cases {
		if got := c.Categorize(tc.y); got != tc.want {
			t.Errorf("Categorize(%v) = %d, want %d", tc.y, got, tc.want)
		}
	}
}

func TestCategoriesAndHintBits(t *testing.T) {
	cases := []struct {
		thresholds int
		categories int
		bits       int
	}{
		{1, 2, 1}, {2, 3, 2}, {3, 4, 2}, {7, 8, 3}, {15, 16, 4},
	}
	for _, tc := range cases {
		ths := make([]float64, tc.thresholds)
		for i := range ths {
			ths[i] = float64(i+1) / float64(tc.thresholds+1)
		}
		c := Config{Thresholds: ths}
		if c.Categories() != tc.categories {
			t.Errorf("%d thresholds: categories = %d, want %d", tc.thresholds, c.Categories(), tc.categories)
		}
		if c.HintBits() != tc.bits {
			t.Errorf("%d categories: bits = %d, want %d", tc.categories, c.HintBits(), tc.bits)
		}
	}
}

// profiledTrace builds a trace with clearly hot, warm, and cold branches.
func profiledTrace() *trace.Trace {
	tr := &trace.Trace{Name: "p"}
	add := func(pc uint64) {
		tr.Records = append(tr.Records, trace.Record{
			PC: pc, Target: pc + 8, Taken: true, Type: trace.UncondDirect,
		})
	}
	cold := uint64(1000)
	for rep := 0; rep < 100; rep++ {
		add(1) // hot: short reuse, 1 set × 2 ways keeps it
		add(2) // hot
		add(cold)
		cold++
	}
	return tr
}

func TestBuildAndLookup(t *testing.T) {
	tr := profiledTrace()
	ht, res, err := ProfileTrace(tr, 2, 2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Accesses != 300 {
		t.Fatalf("accesses = %d", res.Accesses)
	}
	if got := ht.Lookup(1); got != Hot {
		t.Fatalf("branch 1 category = %d, want hot", got)
	}
	if got := ht.Lookup(1000); got != Cold {
		t.Fatalf("cold branch category = %d, want cold", got)
	}
	// Unprofiled branch falls back to the default (warm).
	if got := ht.Lookup(0xdeadbeef); got != Warm {
		t.Fatalf("unprofiled category = %d, want warm default", got)
	}
	shares := ht.CategoryShares()
	if len(shares) != 3 {
		t.Fatalf("shares = %v", shares)
	}
	sum := shares[0] + shares[1] + shares[2]
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("shares don't sum to 1: %v", shares)
	}
}

func TestBuildRejectsBadConfig(t *testing.T) {
	res := &belady.Result{PerBranch: map[uint64]*belady.BranchProfile{}}
	if _, err := Build(res, Config{}); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	tr := profiledTrace()
	ht, _, err := ProfileTrace(tr, 2, 2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ht.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadHints(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != ht.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), ht.Len())
	}
	for pc, c := range ht.Hints {
		if got.Hints[pc] != c {
			t.Errorf("pc %d category %d != %d", pc, got.Hints[pc], c)
		}
	}
	if got.Config.DefaultCategory != ht.Config.DefaultCategory {
		t.Error("default category lost")
	}
	if len(got.Config.Thresholds) != 2 || got.Config.Thresholds[0] != 0.5 {
		t.Errorf("thresholds = %v", got.Config.Thresholds)
	}
}

func TestReadHintsRejectsGarbage(t *testing.T) {
	if _, err := ReadHints(bytes.NewReader([]byte("THRMTRC1xxxx"))); err == nil {
		t.Fatal("wrong magic accepted")
	}
	if _, err := ReadHints(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestAgreement(t *testing.T) {
	a := &HintTable{Hints: map[uint64]uint8{1: 0, 2: 1, 3: 2}}
	b := &HintTable{Hints: map[uint64]uint8{1: 0, 2: 2, 3: 2, 4: 0}}
	if got := Agreement(a, b); got < 0.66 || got > 0.67 {
		t.Fatalf("agreement = %v, want 2/3", got)
	}
	if Agreement(nil, b) != 0 {
		t.Fatal("nil agreement != 0")
	}
	if Agreement(a, &HintTable{Hints: map[uint64]uint8{9: 0}}) != 0 {
		t.Fatal("disjoint agreement != 0")
	}
}

func TestQuantileThresholds(t *testing.T) {
	res := &belady.Result{PerBranch: map[uint64]*belady.BranchProfile{}}
	for i := 0; i < 100; i++ {
		res.PerBranch[uint64(i)] = &belady.BranchProfile{
			PC: uint64(i), Taken: 100, Hits: uint64(i),
		}
	}
	ths := QuantileThresholds(res, 4)
	if len(ths) != 3 {
		t.Fatalf("thresholds = %v", ths)
	}
	for i := 1; i < len(ths); i++ {
		if ths[i] <= ths[i-1] {
			t.Fatalf("not ascending: %v", ths)
		}
	}
	cfg := Config{Thresholds: ths, DefaultCategory: 1}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("quantile config invalid: %v", err)
	}
	// Roughly equal buckets.
	counts := make([]int, 4)
	for _, b := range res.PerBranch {
		counts[cfg.Categorize(b.HitToTaken())]++
	}
	for i, c := range counts {
		if c < 15 || c > 40 {
			t.Errorf("bucket %d = %d, want ~25", i, c)
		}
	}
}

func TestQuantileThresholdsDegenerate(t *testing.T) {
	// All branches identical ratio: thresholds must still be ascending.
	res := &belady.Result{PerBranch: map[uint64]*belady.BranchProfile{}}
	for i := 0; i < 10; i++ {
		res.PerBranch[uint64(i)] = &belady.BranchProfile{Taken: 10, Hits: 5}
	}
	ths := QuantileThresholds(res, 4)
	cfg := Config{Thresholds: ths}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("degenerate thresholds invalid: %v (%v)", err, ths)
	}
}
