package profile_test

import (
	"testing"

	"thermometer/internal/belady"
	"thermometer/internal/policy"
	"thermometer/internal/profile"
	"thermometer/internal/replay"
	"thermometer/internal/trace"
	"thermometer/internal/xrand"
)

func zipfStream(seed uint64, nPCs, length int) []trace.Access {
	r := xrand.New(seed)
	z := xrand.NewZipf(nPCs, 0.9)
	tr := &trace.Trace{Name: "cv"}
	for i := 0; i < length; i++ {
		pc := uint64(z.Sample(r) + 1)
		tr.Records = append(tr.Records, trace.Record{
			PC: pc, Target: pc + 4, Taken: true, Type: trace.UncondDirect,
		})
	}
	return tr.AccessStream()
}

// TestInternalReplayMatchesPackageReplay: the miniature Algorithm 1 replay
// inside CrossValidateThresholds must agree exactly with the real
// Thermometer policy running under package replay.
func TestInternalReplayMatchesPackageReplay(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		acc := zipfStream(seed, 200, 4000)
		res := belady.Profile(acc, 64, 4)
		ht, err := profile.Build(res, profile.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		want := replay.Run(acc, replay.Options{
			Entries: 64, Ways: 4,
			Policy: policy.NewThermometer(), Hints: ht,
		}).Stats.Misses
		got := profile.ThermometerMissesForTest(acc, 64, 4, ht)
		if got != want {
			t.Fatalf("seed %d: internal replay %d misses != package replay %d", seed, got, want)
		}
	}
}

func TestCrossValidateThresholds(t *testing.T) {
	acc := zipfStream(42, 300, 8000)
	cfg, err := profile.CrossValidateThresholds(acc, 128, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("selected config invalid: %v", err)
	}
	// The selected thresholds must come from the default grid.
	found := false
	for _, g := range profile.DefaultThresholdGrid() {
		if len(g) == len(cfg.Thresholds) && g[0] == cfg.Thresholds[0] && g[1] == cfg.Thresholds[1] {
			found = true
		}
	}
	if !found {
		t.Fatalf("thresholds %v not from grid", cfg.Thresholds)
	}
}

func TestCrossValidateRejectsBadGrid(t *testing.T) {
	acc := zipfStream(1, 10, 100)
	if _, err := profile.CrossValidateThresholds(acc, 16, 4, [][]float64{{0.9, 0.1}}); err == nil {
		t.Fatal("descending grid entry accepted")
	}
}

func TestCrossValidateTinyStream(t *testing.T) {
	cfg, err := profile.CrossValidateThresholds(nil, 16, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Thresholds) == 0 {
		t.Fatal("no default returned for tiny stream")
	}
}
