package perfsnap

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Baseline snapshots are checked in as BENCH_<n>.json, where <n> grows by
// one each time a PR re-baselines. "The newest baseline" therefore means the
// largest <n> — numeric order, so BENCH_10 is newer than BENCH_2 (the shell
// equivalent CI used to carry was `ls BENCH_*.json | sort -V | tail -1`).

// NewestSnapshot returns the name with the largest BENCH_<n>.json number
// among names, and false when none matches the pattern. Non-matching names
// (other files in the directory listing) are ignored, as are BENCH files
// with non-numeric or negative suffixes. Ties cannot occur in a directory
// listing; among equal numbers elsewhere the first wins.
func NewestSnapshot(names []string) (string, bool) {
	best, bestN := "", -1
	for _, name := range names {
		n, ok := snapshotNumber(name)
		if ok && n > bestN {
			best, bestN = name, n
		}
	}
	return best, bestN >= 0
}

// snapshotNumber extracts <n> from a BENCH_<n>.json name.
func snapshotNumber(name string) (int, bool) {
	rest, ok := strings.CutPrefix(name, "BENCH_")
	if !ok {
		return 0, false
	}
	digits, ok := strings.CutSuffix(rest, ".json")
	if !ok || digits == "" {
		return 0, false
	}
	n, err := strconv.Atoi(digits)
	if err != nil || n < 0 || strings.HasPrefix(digits, "+") {
		return 0, false
	}
	return n, true
}

// NewestBaseline returns the path of the newest BENCH_<n>.json in dir
// ("" or "." for the current directory). It errors when the directory is
// unreadable or holds no baseline — CI must fail loudly on a missing
// baseline, not silently skip the gate.
func NewestBaseline(dir string) (string, error) {
	if dir == "" {
		dir = "."
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	name, ok := NewestSnapshot(names)
	if !ok {
		return "", fmt.Errorf("no BENCH_<n>.json baseline in %s", dir)
	}
	if dir == "." {
		return name, nil
	}
	return dir + string(os.PathSeparator) + name, nil
}
