// Package perfsnap defines the repo's performance-trajectory snapshots: the
// canonical BENCH_<n>.json schema produced by cmd/benchsnap and the
// benchstat-style comparison that gates CI on throughput regressions.
//
// A snapshot records, for every cell of the 4-policy × 8-workload
// acceptance grid, the per-iteration wall time samples, block throughput,
// and allocation count of one simulation job. Because snapshots are
// compared across machines (a developer laptop seeds the baseline, CI
// runners check against it), every cell also carries a machine-normalized
// score: its median ns divided by the snapshot's calibration time — the
// wall time of a fixed CPU-bound reference loop measured on the same
// machine in the same session. Ratios of scores cancel the machine's raw
// speed, leaving the code's relative cost.
//
// The package itself never reads a clock — it is inside thermolint's
// noambient scope. All measurement happens in cmd/benchsnap; this package
// only defines the schema, the statistics, and the comparison verdicts.
package perfsnap

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// SchemaVersion identifies the snapshot format; bump on incompatible
// changes so stale baselines fail loudly instead of comparing garbage.
const SchemaVersion = 1

// Machine describes where a snapshot was measured. Informational only:
// comparisons rely on the calibration score, not on matching hardware.
type Machine struct {
	GoOS       string `json:"goos"`
	GoArch     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
}

// Cell is one grid point: one policy on one workload.
type Cell struct {
	Policy string `json:"policy"`
	App    string `json:"app"`
	// Blocks is the number of BTB block lookups one iteration performs — a
	// pure function of the spec, so it must match across snapshots of the
	// same grid; a mismatch marks the cell incomparable.
	Blocks uint64 `json:"blocks"`
	// SamplesNs are the raw per-iteration wall times. Medians, not means:
	// one descheduling blip must not move the cell.
	SamplesNs []float64 `json:"samples_ns"`
	// NsPerOp is the median of SamplesNs.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is the heap allocation count of one iteration.
	AllocsPerOp uint64 `json:"allocs_per_op"`
	// BlocksPerSec is Blocks / (NsPerOp in seconds).
	BlocksPerSec float64 `json:"blocks_per_sec"`
	// Score is the machine-normalized cost: NsPerOp / CalibNs.
	Score float64 `json:"score"`
}

// BlocksPerCalib returns the cell's machine-normalized throughput: blocks
// simulated per calibration-loop-time (Blocks / Score). Unlike BlocksPerSec
// it is comparable across machines, so absolute throughput floors are
// expressed in this unit. Returns 0 when the score is unavailable.
func (c *Cell) BlocksPerCalib() float64 {
	if c.Score <= 0 {
		return 0
	}
	return float64(c.Blocks) / c.Score
}

// MedianBlocksPerCalib returns the grid-wide median normalized throughput,
// the quantity an absolute throughput floor gates on. Cells without a score
// are excluded; 0 means no cell was scorable.
func (s *Snapshot) MedianBlocksPerCalib() float64 {
	th := make([]float64, 0, len(s.Cells))
	for i := range s.Cells {
		if v := s.Cells[i].BlocksPerCalib(); v > 0 {
			th = append(th, v)
		}
	}
	return Median(th)
}

// Snapshot is one BENCH_<n>.json document.
type Snapshot struct {
	Schema  int     `json:"schema"`
	Grid    string  `json:"grid"`
	Scale   int     `json:"scale"`
	Samples int     `json:"samples"`
	Machine Machine `json:"machine"`
	// CalibNs is the median wall time of the fixed calibration loop on the
	// measuring machine; the denominator of every cell score.
	CalibNs float64 `json:"calib_ns"`
	Cells   []Cell  `json:"cells"`
}

// Median returns the median of xs (0 for an empty slice). xs is not
// modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// Finalize derives every computed field (NsPerOp, BlocksPerSec, Score) from
// the raw samples and calibration time, and sorts cells into canonical
// (policy, app) order so snapshot files diff cleanly.
func (s *Snapshot) Finalize() {
	for i := range s.Cells {
		c := &s.Cells[i]
		c.NsPerOp = Median(c.SamplesNs)
		if c.NsPerOp > 0 {
			c.BlocksPerSec = float64(c.Blocks) / (c.NsPerOp / 1e9)
		}
		if s.CalibNs > 0 {
			c.Score = c.NsPerOp / s.CalibNs
		}
	}
	sort.Slice(s.Cells, func(i, j int) bool {
		if s.Cells[i].Policy != s.Cells[j].Policy {
			return s.Cells[i].Policy < s.Cells[j].Policy
		}
		return s.Cells[i].App < s.Cells[j].App
	})
}

// Write encodes the snapshot as indented, canonically ordered JSON.
func (s *Snapshot) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Parse decodes and validates a snapshot document.
func Parse(b []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("malformed snapshot: %w", err)
	}
	if s.Schema != SchemaVersion {
		return nil, fmt.Errorf("snapshot schema %d, want %d (regenerate the baseline)", s.Schema, SchemaVersion)
	}
	if s.CalibNs <= 0 {
		return nil, fmt.Errorf("snapshot has no calibration time; scores are meaningless")
	}
	if len(s.Cells) == 0 {
		return nil, fmt.Errorf("snapshot has no cells")
	}
	for i := range s.Cells {
		if len(s.Cells[i].SamplesNs) == 0 {
			return nil, fmt.Errorf("cell %s/%s has no samples", s.Cells[i].Policy, s.Cells[i].App)
		}
	}
	// Re-derive the computed fields from the raw samples: the stored
	// NsPerOp/Score values are advisory, and the comparison gate must not be
	// foolable by a snapshot whose derived fields are stale or edited.
	s.Finalize()
	return &s, nil
}

// mannWhitneyCritical maps the common sample count n (= n1 = n2) to the
// largest U still significant at two-sided α = 0.05. Below n = 4 no U is
// small enough; above the table we fall back to the overlap test.
var mannWhitneyCritical = map[int]float64{
	4: 0, 5: 2, 6: 5, 7: 8, 8: 13, 9: 17, 10: 23,
}

// significantlyDifferent reports whether two sample sets differ beyond
// noise: a Mann-Whitney U rank test at α = 0.05 when both sets have the
// same in-table size, else the conservative no-overlap criterion (every
// value of one set strictly beyond every value of the other).
func significantlyDifferent(a, b []float64) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	if crit, ok := mannWhitneyCritical[len(a)]; ok && len(a) == len(b) {
		var u1 float64
		for _, x := range a {
			for _, y := range b {
				switch {
				case x < y:
					u1++
				case x == y:
					u1 += 0.5
				}
			}
		}
		u2 := float64(len(a)*len(b)) - u1
		return math.Min(u1, u2) <= crit
	}
	return maxOf(a) < minOf(b) || maxOf(b) < minOf(a)
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
