package perfsnap

import (
	"fmt"
	"io"
)

// Verdicts a compared cell can receive.
const (
	VerdictUnchanged    = "~"            // delta within noise or threshold
	VerdictRegression   = "REGRESSION"   // significantly slower than threshold
	VerdictImprovement  = "improvement"  // significantly faster than threshold
	VerdictIncomparable = "incomparable" // block counts differ (grid changed)
)

// Row is one cell's comparison.
type Row struct {
	Policy string `json:"policy"`
	App    string `json:"app"`
	// OldScore and NewScore are the machine-normalized costs being
	// compared; Ratio is New/Old (1.10 = 10% slower).
	OldScore float64 `json:"old_score"`
	NewScore float64 `json:"new_score"`
	Ratio    float64 `json:"ratio"`
	// Significant reports the Mann-Whitney/no-overlap test on the
	// normalized sample sets.
	Significant bool   `json:"significant"`
	Verdict     string `json:"verdict"`
}

// Report is the outcome of comparing two snapshots.
type Report struct {
	// Threshold is the regression gate: a cell regresses when its ratio
	// exceeds 1+Threshold AND the difference is statistically significant.
	Threshold   float64  `json:"threshold"`
	Rows        []Row    `json:"rows"`
	Regressions int      `json:"regressions"`
	OnlyOld     []string `json:"only_old,omitempty"` // cells missing from the new snapshot
	OnlyNew     []string `json:"only_new,omitempty"` // cells with no baseline
}

// Failed reports whether the comparison should gate (any regression, or
// baseline cells that vanished — a silently shrunk grid must not pass).
func (r *Report) Failed() bool { return r.Regressions > 0 || len(r.OnlyOld) > 0 }

// Compare diffs new against old cell by cell on machine-normalized scores.
// threshold is the relative slowdown tolerated before a significant
// difference counts as a regression (0.10 = 10%).
func Compare(old, new *Snapshot, threshold float64) *Report {
	rep := &Report{Threshold: threshold}
	newBy := make(map[string]*Cell, len(new.Cells))
	for i := range new.Cells {
		c := &new.Cells[i]
		newBy[c.Policy+"/"+c.App] = c
	}
	seen := make(map[string]bool, len(old.Cells))
	for i := range old.Cells {
		oc := &old.Cells[i]
		key := oc.Policy + "/" + oc.App
		seen[key] = true
		nc, ok := newBy[key]
		if !ok {
			rep.OnlyOld = append(rep.OnlyOld, key)
			continue
		}
		row := Row{Policy: oc.Policy, App: oc.App, OldScore: oc.Score, NewScore: nc.Score}
		if oc.Score > 0 {
			row.Ratio = nc.Score / oc.Score
		}
		switch {
		case oc.Blocks != nc.Blocks:
			row.Verdict = VerdictIncomparable
		case oc.Score <= 0 || nc.Score <= 0:
			// A degenerate (zero/negative) score leaves Ratio meaningless;
			// without this guard a zero baseline would read as a huge
			// "improvement" and mask a real slowdown.
			row.Verdict = VerdictIncomparable
		default:
			row.Significant = significantlyDifferent(
				normalized(oc.SamplesNs, old.CalibNs),
				normalized(nc.SamplesNs, new.CalibNs))
			switch {
			case row.Significant && row.Ratio > 1+threshold:
				row.Verdict = VerdictRegression
				rep.Regressions++
			case row.Significant && row.Ratio < 1/(1+threshold):
				row.Verdict = VerdictImprovement
			default:
				row.Verdict = VerdictUnchanged
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	// Cells are pre-sorted by Finalize, so iteration order is canonical.
	for i := range new.Cells {
		key := new.Cells[i].Policy + "/" + new.Cells[i].App
		if !seen[key] {
			rep.OnlyNew = append(rep.OnlyNew, key)
		}
	}
	return rep
}

func normalized(samples []float64, calib float64) []float64 {
	if calib <= 0 {
		return samples
	}
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = s / calib
	}
	return out
}

// WriteText renders the benchstat-style comparison table.
func (r *Report) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-12s %-12s %12s %12s %8s  %s\n",
		"policy", "app", "old score", "new score", "delta", "verdict"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		delta := "~"
		if row.Significant && row.Ratio > 0 {
			delta = fmt.Sprintf("%+.1f%%", (row.Ratio-1)*100)
		}
		if _, err := fmt.Fprintf(w, "%-12s %-12s %12.4f %12.4f %8s  %s\n",
			row.Policy, row.App, row.OldScore, row.NewScore, delta, row.Verdict); err != nil {
			return err
		}
	}
	for _, key := range r.OnlyOld {
		fmt.Fprintf(w, "%-25s  MISSING from new snapshot\n", key)
	}
	for _, key := range r.OnlyNew {
		fmt.Fprintf(w, "%-25s  new cell (no baseline)\n", key)
	}
	_, err := fmt.Fprintf(w, "%d regression(s) at >%.0f%% threshold\n", r.Regressions, r.Threshold*100)
	return err
}

// WriteMarkdown renders the comparison as a GitHub-flavored markdown table —
// the shape CI appends to $GITHUB_STEP_SUMMARY. Cell values are generated
// here (policy/app names come from the benchmark grid, not user input), so no
// escaping is needed.
func (r *Report) WriteMarkdown(w io.Writer) error {
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("### Bench trajectory (threshold %.0f%%)\n\n", r.Threshold*100); err != nil {
		return err
	}
	if err := p("| policy | app | old score | new score | delta | verdict |\n|---|---|---:|---:|---:|---|\n"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		delta := "~"
		if row.Significant && row.Ratio > 0 {
			delta = fmt.Sprintf("%+.1f%%", (row.Ratio-1)*100)
		}
		verdict := row.Verdict
		if verdict == VerdictRegression {
			verdict = "**" + verdict + "**"
		}
		if err := p("| %s | %s | %.4f | %.4f | %s | %s |\n",
			row.Policy, row.App, row.OldScore, row.NewScore, delta, verdict); err != nil {
			return err
		}
	}
	for _, key := range r.OnlyOld {
		if err := p("| %s | | | | | **MISSING from new snapshot** |\n", key); err != nil {
			return err
		}
	}
	for _, key := range r.OnlyNew {
		if err := p("| %s | | | | | new cell (no baseline) |\n", key); err != nil {
			return err
		}
	}
	return p("\n%d regression(s) at >%.0f%% threshold\n", r.Regressions, r.Threshold*100)
}
