package perfsnap

import (
	"bytes"
	"strings"
	"testing"
)

// snap builds a finalized one-cell-per-entry snapshot from (policy, app,
// blocks, samples) rows.
func snap(calib float64, cells ...Cell) *Snapshot {
	s := &Snapshot{
		Schema: SchemaVersion, Grid: "test", Scale: 16, Samples: 5,
		CalibNs: calib, Cells: cells,
	}
	s.Finalize()
	return s
}

func cell(policy, app string, blocks uint64, samples ...float64) Cell {
	return Cell{Policy: policy, App: app, Blocks: blocks, SamplesNs: samples, AllocsPerOp: 7}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{3}, 3},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{5, 1, 9}, 5},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestBlocksPerCalib(t *testing.T) {
	s := snap(100,
		cell("lru", "kafka", 1000, 2e6, 1e6, 3e6),   // score 2e4 -> 0.05 blocks/calib
		cell("lru", "mysql", 1000, 4e6, 4e6, 4e6),   // score 4e4 -> 0.025
		cell("srrip", "kafka", 1000, 8e6, 8e6, 8e6), // score 8e4 -> 0.0125
	)
	if got := s.Cells[0].BlocksPerCalib(); got != 0.05 {
		t.Fatalf("BlocksPerCalib = %v, want 0.05", got)
	}
	if got := s.MedianBlocksPerCalib(); got != 0.025 {
		t.Fatalf("MedianBlocksPerCalib = %v, want 0.025", got)
	}
	var unscored Cell
	if got := unscored.BlocksPerCalib(); got != 0 {
		t.Fatalf("unscored BlocksPerCalib = %v, want 0", got)
	}
}

func TestFinalizeDerivesAndSorts(t *testing.T) {
	s := snap(100,
		cell("srrip", "kafka", 1000, 2e6, 1e6, 3e6),
		cell("lru", "mysql", 1000, 4e6, 4e6, 4e6),
	)
	if s.Cells[0].Policy != "lru" || s.Cells[1].Policy != "srrip" {
		t.Fatalf("cells not in canonical order: %+v", s.Cells)
	}
	srrip := s.Cells[1]
	if srrip.NsPerOp != 2e6 {
		t.Fatalf("median ns = %v", srrip.NsPerOp)
	}
	if srrip.Score != 2e4 {
		t.Fatalf("score = %v", srrip.Score)
	}
	if srrip.BlocksPerSec != 1000/(2e6/1e9) {
		t.Fatalf("blocks/sec = %v", srrip.BlocksPerSec)
	}
}

func TestRoundTrip(t *testing.T) {
	s := snap(100, cell("lru", "kafka", 1000, 1e6, 1.1e6, 0.9e6, 1e6, 1e6))
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if back.Cells[0].Score != s.Cells[0].Score || back.CalibNs != s.CalibNs {
		t.Fatalf("round trip mangled snapshot: %+v", back)
	}

	for _, bad := range []string{
		`{`,
		`{"schema":99,"calib_ns":1,"cells":[{}]}`,
		`{"schema":1,"calib_ns":0,"cells":[{}]}`,
		`{"schema":1,"calib_ns":1,"cells":[]}`,
		`{"schema":1,"calib_ns":1,"cells":[{"policy":"lru","app":"kafka"}]}`, // no samples
	} {
		if _, err := Parse([]byte(bad)); err == nil {
			t.Errorf("Parse(%q) accepted invalid snapshot", bad)
		}
	}
}

// TestParseRederivesFromSamples pins that the gate cannot be fooled by a
// snapshot whose derived fields (ns_per_op, score) are stale: Parse
// recomputes them from the raw samples.
func TestParseRederivesFromSamples(t *testing.T) {
	doc := `{"schema":1,"grid":"t","scale":16,"samples":5,"calib_ns":100,
	  "cells":[{"policy":"lru","app":"kafka","blocks":1000,
	    "samples_ns":[1300000,1310000,1290000,1320000,1280000],
	    "ns_per_op":1000000,"score":10000,"blocks_per_sec":1}]}`
	s, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if s.Cells[0].NsPerOp != 1.3e6 || s.Cells[0].Score != 1.3e4 {
		t.Fatalf("derived fields not recomputed from samples: %+v", s.Cells[0])
	}
	old := snap(100, cell("lru", "kafka", 1000, 1.00e6, 1.01e6, 0.99e6, 1.02e6, 0.98e6))
	rep := Compare(old, s, 0.10)
	if !rep.Failed() || rep.Rows[0].Verdict != VerdictRegression {
		t.Fatalf("stale-score snapshot dodged the gate: %+v", rep.Rows)
	}
}

// TestCompareSyntheticRegression pins the CI gate: a clean >10% slowdown
// with non-overlapping samples must be flagged as a significant regression
// and fail the report.
func TestCompareSyntheticRegression(t *testing.T) {
	old := snap(100, cell("lru", "kafka", 1000, 1.00e6, 1.01e6, 0.99e6, 1.02e6, 0.98e6))
	slow := snap(100, cell("lru", "kafka", 1000, 1.20e6, 1.21e6, 1.19e6, 1.22e6, 1.18e6))
	rep := Compare(old, slow, 0.10)
	if !rep.Failed() || rep.Regressions != 1 {
		t.Fatalf("20%% slowdown not gated: %+v", rep)
	}
	row := rep.Rows[0]
	if row.Verdict != VerdictRegression || !row.Significant || row.Ratio < 1.15 {
		t.Fatalf("row: %+v", row)
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "REGRESSION") || !strings.Contains(buf.String(), "1 regression(s)") {
		t.Fatalf("report text:\n%s", buf.String())
	}

	// The markdown rendering (the CI step-summary shape) carries the same
	// verdict, bolded, in a well-formed table.
	buf.Reset()
	if err := rep.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	md := buf.String()
	for _, want := range []string{"| policy | app |", "| lru | kafka |", "**REGRESSION**", "1 regression(s)"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown report missing %q:\n%s", want, md)
		}
	}
}

func TestCompareWithinNoiseOrThreshold(t *testing.T) {
	old := snap(100, cell("lru", "kafka", 1000, 1.00e6, 1.01e6, 0.99e6, 1.02e6, 0.98e6))

	// 5% slower with clean separation: significant but under the 10% gate.
	mild := snap(100, cell("lru", "kafka", 1000, 1.05e6, 1.06e6, 1.04e6, 1.07e6, 1.05e6))
	if rep := Compare(old, mild, 0.10); rep.Failed() {
		t.Fatalf("5%% delta gated: %+v", rep.Rows)
	}

	// 15% higher median but wildly overlapping samples: not significant.
	noisy := snap(100, cell("lru", "kafka", 1000, 1.15e6, 0.70e6, 1.60e6, 0.90e6, 1.30e6))
	rep := Compare(old, noisy, 0.10)
	if rep.Failed() {
		t.Fatalf("noisy overlap gated: %+v", rep.Rows)
	}
	if rep.Rows[0].Significant {
		t.Fatalf("overlapping samples called significant: %+v", rep.Rows[0])
	}
}

// TestCompareMachineNormalization pins the cross-machine story: a machine
// that is uniformly 2x slower (double calibration time, double cell times)
// produces identical scores and no regression.
func TestCompareMachineNormalization(t *testing.T) {
	fast := snap(100, cell("lru", "kafka", 1000, 1.00e6, 1.01e6, 0.99e6, 1.02e6, 0.98e6))
	slowMachine := snap(200, cell("lru", "kafka", 1000, 2.00e6, 2.02e6, 1.98e6, 2.04e6, 1.96e6))
	rep := Compare(fast, slowMachine, 0.10)
	if rep.Failed() {
		t.Fatalf("2x machine flagged as code regression: %+v", rep.Rows)
	}
	if r := rep.Rows[0].Ratio; r < 0.99 || r > 1.01 {
		t.Fatalf("normalized ratio = %v, want ~1", r)
	}
}

func TestCompareGridMismatch(t *testing.T) {
	old := snap(100,
		cell("lru", "kafka", 1000, 1e6, 1e6, 1e6, 1e6, 1e6),
		cell("lru", "mysql", 1000, 1e6, 1e6, 1e6, 1e6, 1e6),
	)
	// mysql vanished, tomcat appeared, kafka's block count changed.
	chopped := snap(100,
		cell("lru", "kafka", 999, 1e6, 1e6, 1e6, 1e6, 1e6),
		cell("lru", "tomcat", 1000, 1e6, 1e6, 1e6, 1e6, 1e6),
	)
	rep := Compare(old, chopped, 0.10)
	if !rep.Failed() {
		t.Fatal("vanished baseline cell did not gate")
	}
	if len(rep.OnlyOld) != 1 || rep.OnlyOld[0] != "lru/mysql" {
		t.Fatalf("OnlyOld: %v", rep.OnlyOld)
	}
	if len(rep.OnlyNew) != 1 || rep.OnlyNew[0] != "lru/tomcat" {
		t.Fatalf("OnlyNew: %v", rep.OnlyNew)
	}
	if rep.Rows[0].Verdict != VerdictIncomparable {
		t.Fatalf("changed-blocks cell: %+v", rep.Rows[0])
	}
}

// TestCompareDegenerateBaseline pins that a zero-score baseline cell is
// incomparable rather than an "improvement": with old score 0 the ratio is
// meaningless, and a significant sample difference must not let a real
// slowdown masquerade as a speedup.
func TestCompareDegenerateBaseline(t *testing.T) {
	degenerate := snap(100, cell("lru", "kafka", 1000, 0, 0, 0, 0, 0))
	slow := snap(100, cell("lru", "kafka", 1000, 1.20e6, 1.21e6, 1.19e6, 1.22e6, 1.18e6))
	rep := Compare(degenerate, slow, 0.10)
	if v := rep.Rows[0].Verdict; v != VerdictIncomparable {
		t.Fatalf("zero baseline verdict = %q, want %q", v, VerdictIncomparable)
	}
	// And symmetrically for a degenerate new cell.
	rep = Compare(slow, degenerate, 0.10)
	if v := rep.Rows[0].Verdict; v != VerdictIncomparable {
		t.Fatalf("zero new-cell verdict = %q, want %q", v, VerdictIncomparable)
	}
}

func TestSignificance(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if significantlyDifferent(a, a) {
		t.Fatal("identical sets significant")
	}
	b := []float64{10, 11, 12, 13, 14}
	if !significantlyDifferent(a, b) {
		t.Fatal("disjoint sets not significant")
	}
	// Unequal sizes fall back to the no-overlap criterion.
	if significantlyDifferent([]float64{1, 2, 3}, []float64{2.5, 3.5}) {
		t.Fatal("overlapping unequal-size sets significant")
	}
	if !significantlyDifferent([]float64{1, 2, 3}, []float64{4, 5}) {
		t.Fatal("disjoint unequal-size sets not significant")
	}
	// n=3 is below the U table: even disjoint equal-size triples use the
	// overlap fallback and still read as different.
	if !significantlyDifferent([]float64{1, 1, 1}, []float64{2, 2, 2}) {
		t.Fatal("disjoint triples not significant")
	}
}
