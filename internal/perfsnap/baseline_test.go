package perfsnap

import (
	"os"
	"path/filepath"
	"testing"
)

func TestNewestSnapshot(t *testing.T) {
	cases := []struct {
		name  string
		names []string
		want  string
		ok    bool
	}{
		{"numeric not lexical", []string{"BENCH_2.json", "BENCH_10.json", "BENCH_9.json"}, "BENCH_10.json", true},
		{"single", []string{"BENCH_0.json"}, "BENCH_0.json", true},
		{"ignores other files", []string{"README.md", "BENCH_1.json", "bench-head.json", "BENCH_notes.txt"}, "BENCH_1.json", true},
		{"ignores malformed suffixes", []string{"BENCH_.json", "BENCH_1x.json", "BENCH_-3.json", "BENCH_+4.json", "BENCH_2.json"}, "BENCH_2.json", true},
		{"empty", nil, "", false},
		{"no match", []string{"bench.json", "BENCH_1.txt"}, "", false},
	}
	for _, tc := range cases {
		got, ok := NewestSnapshot(tc.names)
		if got != tc.want || ok != tc.ok {
			t.Errorf("%s: NewestSnapshot(%v) = %q, %v; want %q, %v",
				tc.name, tc.names, got, ok, tc.want, tc.ok)
		}
	}
}

func TestNewestBaseline(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_1.json", "BENCH_12.json", "BENCH_3.json", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := NewestBaseline(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "BENCH_12.json"); got != want {
		t.Fatalf("NewestBaseline = %q, want %q", got, want)
	}

	empty := t.TempDir()
	if _, err := NewestBaseline(empty); err == nil {
		t.Fatal("empty dir: want an error, not a silent skip")
	}
	if _, err := NewestBaseline(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("unreadable dir: want an error")
	}
}
