package detmap

import (
	"reflect"
	"testing"
)

func TestSortedKeys(t *testing.T) {
	m := map[uint64]string{9: "a", 3: "b", 7: "c", 1: "d"}
	got := SortedKeys(m)
	want := []uint64{1, 3, 7, 9}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SortedKeys = %v, want %v", got, want)
	}
	if got := SortedKeys(map[string]int(nil)); len(got) != 0 {
		t.Fatalf("SortedKeys(nil) = %v, want empty", got)
	}
}
