// Package detmap provides deterministic iteration over Go maps.
//
// Go randomizes map iteration order on every range, which silently breaks
// the simulator's bit-for-bit reproducibility contract (identical seeds must
// produce identical victim choices, metrics JSON, and epoch CSVs — see the
// Determinism section of DESIGN.md). The thermolint `detrange` analyzer
// flags order-dependent map ranges in simulator packages; this package is
// the sanctioned fix: iterate SortedKeys(m) instead of m.
package detmap

import (
	"cmp"
	"sort"
)

// SortedKeys returns the keys of m in ascending order. The slice is freshly
// allocated; mutating it does not affect m.
func SortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m { //lint:allow detrange key collection feeding an immediate sort
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
