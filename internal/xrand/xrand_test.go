package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for SplitMix64 seeded with 0 (from the published
	// reference implementation).
	state := uint64(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
	}
	for i, w := range want {
		if got := SplitMix64(&state); got != w {
			t.Fatalf("SplitMix64 output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %#x vs %#x", i, av, bv)
		}
	}
	c := New(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams for different seeds agree %d/1000 times", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(1)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniform(t *testing.T) {
	r := New(7)
	const n, samples = 10, 100000
	var counts [n]int
	for i := 0; i < samples; i++ {
		counts[r.Uint64n(n)]++
	}
	want := samples / n
	for i, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Errorf("bucket %d count %d deviates >20%% from %d", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	sum := 0.0
	const samples = 100000
	for i := 0; i < samples; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / samples; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBoolExtremes(t *testing.T) {
	r := New(3)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(5)
	const p, samples = 0.1, 50000
	sum := 0
	for i := 0; i < samples; i++ {
		sum += r.Geometric(p)
	}
	mean := float64(sum) / samples
	if mean < 8.5 || mean > 11.5 {
		t.Fatalf("Geometric(0.1) mean = %v, want ~10", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(13)
	z := NewZipf(100, 1.0)
	var counts [100]int
	const samples = 100000
	for i := 0; i < samples; i++ {
		counts[z.Sample(r)]++
	}
	// Rank 0 should dominate rank 50 by roughly 50x for s=1.
	if counts[0] < counts[50]*10 {
		t.Fatalf("Zipf not skewed: rank0=%d rank50=%d", counts[0], counts[50])
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != samples {
		t.Fatalf("samples leaked: %d != %d", total, samples)
	}
}

func TestZipfZeroSkewUniform(t *testing.T) {
	r := New(17)
	z := NewZipf(10, 0)
	var counts [10]int
	const samples = 50000
	for i := 0; i < samples; i++ {
		counts[z.Sample(r)]++
	}
	for i, c := range counts {
		if c < samples/10*8/10 || c > samples/10*12/10 {
			t.Errorf("uniform Zipf bucket %d = %d, want ~%d", i, c, samples/10)
		}
	}
}

func TestMix64Distinct(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := uint64(0); i < 10000; i++ {
		h := Mix64(i)
		if seen[h] {
			t.Fatalf("Mix64 collision at %d", i)
		}
		seen[h] = true
	}
}
