// Package xrand provides a small, fast, deterministic pseudo-random number
// generator used throughout the simulator and the synthetic workload
// generators.
//
// The standard library's math/rand does not guarantee a stable value stream
// across Go releases, which would make golden tests and recorded experiment
// results fragile. xrand implements SplitMix64 (for seeding and cheap
// stateless mixing) and xoshiro256**, whose output sequences are fixed by
// their published reference algorithms.
package xrand

import (
	"math"
	"math/bits"
)

// SplitMix64 advances the given state and returns the next value of the
// SplitMix64 sequence. It is useful both as a standalone generator for
// stateless hashing of small integers and as the seeding procedure for RNG.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 returns a well-mixed hash of x. It is the finalizer of SplitMix64
// and is suitable for hashing PCs, set indices, and similar small keys.
func Mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// RNG is a xoshiro256** generator. The zero value is not a valid generator;
// use New.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from seed via SplitMix64, per the xoshiro
// authors' recommendation. Distinct seeds yield uncorrelated streams.
func New(seed uint64) *RNG {
	var r RNG
	sm := seed
	for i := range r.s {
		r.s[i] = SplitMix64(&sm)
	}
	// xoshiro256** requires a nonzero state; SplitMix64 of any seed yields
	// all-zero state with probability ~2^-256, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return &r
}

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	result := bits.RotateLeft64(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = bits.RotateLeft64(r.s[3], 45)
	return result
}

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniformly distributed value in [0, n) using Lemire's
// multiply-shift rejection method. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	// Lemire's method: multiply-high with rejection of the biased region.
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bool returns true with probability p (clamped to [0,1]).
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Geometric returns a geometrically distributed integer >= 1 with mean
// approximately 1/p for small p. Used for run lengths and reuse gaps.
func (r *RNG) Geometric(p float64) int {
	if p >= 1 {
		return 1
	}
	if p <= 0 {
		panic("xrand: Geometric with non-positive p")
	}
	n := 1
	for !r.Bool(p) {
		n++
		if n >= 1<<20 { // statistical safety bound
			break
		}
	}
	return n
}

// Perm fills a permutation of [0, n) using the Fisher-Yates shuffle.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Zipf samples from a Zipf-like distribution over [0, n) with skew s > 0
// using inverse-CDF on a harmonic approximation. Larger s concentrates
// probability mass on small indices. It is deterministic given the RNG
// state and reasonably fast for the generator's purposes.
type Zipf struct {
	n   int
	cdf []float64
}

// NewZipf precomputes the CDF for a Zipf distribution of n elements with
// exponent s. It panics if n <= 0 or s < 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with non-positive n")
	}
	if s < 0 {
		panic("xrand: NewZipf with negative s")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / pow(float64(i+1), s)
		cdf[i] = sum
	}
	inv := 1.0 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	return &Zipf{n: n, cdf: cdf}
}

// N returns the number of elements in the distribution's support.
func (z *Zipf) N() int { return z.n }

// Sample draws an index in [0, n) from the distribution.
func (z *Zipf) Sample(r *RNG) int {
	u := r.Float64()
	// Binary search the CDF.
	lo, hi := 0, z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// pow wraps math.Pow with fast paths for the common exponents used when
// precomputing Zipf CDFs.
func pow(x, y float64) float64 {
	switch y {
	case 0:
		return 1
	case 1:
		return x
	}
	return math.Pow(x, y)
}
