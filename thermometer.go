// Package thermometer is a Go reproduction of "Thermometer: Profile-Guided
// BTB Replacement for Data Center Applications" (Song et al., ISCA 2022).
//
// It provides, as one library:
//
//   - a branch-trace model and binary trace format (the stand-in for the
//     Intel PT captures the paper profiles);
//   - synthetic workload generators for the paper's 13 data center
//     applications and the CBP-5 / IPC-1 trace suites;
//   - the Thermometer offline profiler: Belady-optimal BTB simulation →
//     per-branch hit-to-taken "temperature" → 2-bit hint tables;
//   - BTB replacement policies: LRU, SRRIP, GHRP, Hawkeye, Belady OPT, and
//     Thermometer itself (Algorithm 1 of the paper);
//   - a decoupled-frontend (FDIP) timing simulator with TAGE direction
//     prediction, IBTB, RAS, a four-level cache hierarchy, and the
//     Confluence/Shotgun/Twig BTB prefetchers;
//   - an experiment harness regenerating every table and figure of the
//     paper's evaluation.
//
// This file is the public facade: it re-exports the stable API surface via
// type aliases and thin wrappers so that downstream users never import
// internal packages. The quickstart:
//
//	spec, _ := thermometer.App("kafka")
//	train := spec.Generate(0)
//	hints, _, _ := thermometer.Profile(train, 8192, 4)
//
//	test := spec.Generate(1)
//	base := thermometer.DefaultConfig()
//	cfg := thermometer.DefaultConfig()
//	cfg.NewPolicy = thermometer.NewThermometerPolicy
//	cfg.Hints = hints
//
//	lru := thermometer.Simulate(test, base)
//	therm := thermometer.Simulate(test, cfg)
//	fmt.Printf("speedup: %.2f%%\n", 100*thermometer.Speedup(lru, therm))
package thermometer

import (
	"io"

	"thermometer/internal/belady"
	"thermometer/internal/btb"
	"thermometer/internal/core"
	"thermometer/internal/policy"
	"thermometer/internal/prefetch"
	"thermometer/internal/profile"
	"thermometer/internal/trace"
	"thermometer/internal/workload"
)

// --- traces ---

// Trace is an in-memory branch trace (see internal/trace for the model).
type Trace = trace.Trace

// Record is one dynamic branch record.
type Record = trace.Record

// BranchType classifies a branch record.
type BranchType = trace.BranchType

// Branch types.
const (
	CondDirect   = trace.CondDirect
	UncondDirect = trace.UncondDirect
	Call         = trace.Call
	Return       = trace.Return
	IndirectJump = trace.IndirectJump
	IndirectCall = trace.IndirectCall
)

// ReadTrace parses a binary trace file.
func ReadTrace(r io.Reader) (*Trace, error) { return trace.Read(r) }

// WriteTrace serializes a trace to the binary format.
func WriteTrace(w io.Writer, t *Trace) error { return trace.Write(w, t) }

// --- workloads ---

// AppSpec parameterizes one synthetic data center application.
type AppSpec = workload.AppSpec

// Apps returns the 13 data center application models in the paper's figure
// order.
func Apps() []AppSpec { return workload.Apps() }

// AppNames returns the 13 application names.
func AppNames() []string { return workload.AppNames() }

// App looks up an application model by name.
func App(name string) (AppSpec, bool) { return workload.App(name) }

// CBP5Count and IPC1Count are the sizes of the championship-style suites.
const (
	CBP5Count = workload.CBP5Count
	IPC1Count = workload.IPC1Count
)

// CBP5Trace generates CBP-5-style trace i.
func CBP5Trace(i int) *Trace { return workload.CBP5Spec(i).Generate(0) }

// IPC1Trace generates IPC-1-style trace i.
func IPC1Trace(i int) *Trace { return workload.IPC1Spec(i).Generate(0) }

// --- profiling (the paper's offline steps) ---

// HintTable maps branch PCs to temperature categories.
type HintTable = profile.HintTable

// ProfileConfig controls temperature classification.
type ProfileConfig = profile.Config

// DefaultProfileConfig returns the paper's 3-category (50%/80%) setup.
func DefaultProfileConfig() ProfileConfig { return profile.DefaultConfig() }

// BeladyResult is the raw output of the optimal-policy simulation.
type BeladyResult = belady.Result

// Profile runs the full offline pipeline on a trace for a BTB geometry:
// Belady-optimal simulation, temperature computation, hint-table build.
func Profile(t *Trace, btbEntries, btbWays int) (*HintTable, *BeladyResult, error) {
	return profile.ProfileTrace(t, btbEntries, btbWays, profile.DefaultConfig())
}

// ProfileWithConfig is Profile with a custom classification config.
func ProfileWithConfig(t *Trace, btbEntries, btbWays int, cfg ProfileConfig) (*HintTable, *BeladyResult, error) {
	return profile.ProfileTrace(t, btbEntries, btbWays, cfg)
}

// ReadHints parses a hint file written by HintTable.Write.
func ReadHints(r io.Reader) (*HintTable, error) { return profile.ReadHints(r) }

// --- replacement policies ---

// Policy is the BTB replacement-policy interface.
type Policy = btb.Policy

// Policy constructors (each returns a fresh instance; pass them as
// Config.NewPolicy factories).
func NewLRUPolicy() Policy         { return policy.NewLRU() }
func NewSRRIPPolicy() Policy       { return policy.NewSRRIP() }
func NewGHRPPolicy() Policy        { return policy.NewGHRP() }
func NewHawkeyePolicy() Policy     { return policy.NewHawkeye() }
func NewOPTPolicy() Policy         { return policy.NewOPT() }
func NewThermometerPolicy() Policy { return policy.NewThermometer() }

// ThermometerPolicy is the concrete Thermometer policy type (exposes
// Coverage statistics).
type ThermometerPolicy = policy.Thermometer

// --- timing simulation ---

// Config parameterizes a timing simulation (Table 1 defaults via
// DefaultConfig).
type Config = core.Config

// SimResult reports a timing simulation.
type SimResult = core.Result

// DefaultConfig returns the paper's Table 1 configuration with LRU
// replacement.
func DefaultConfig() Config { return core.DefaultConfig() }

// TwoLevelBTBConfig sizes the optional two-level BTB organization
// (Config.TwoLevelBTB).
type TwoLevelBTBConfig = core.TwoLevelBTBConfig

// DefaultTwoLevelBTB returns a 1K+8K two-level BTB configuration.
func DefaultTwoLevelBTB() *TwoLevelBTBConfig { return core.DefaultTwoLevelBTB() }

// Simulate runs the FDIP timing model over a trace.
func Simulate(t *Trace, cfg Config) *SimResult { return core.Run(t, cfg) }

// Speedup returns r's IPC improvement over base as a fraction.
func Speedup(base, r *SimResult) float64 { return core.Speedup(base, r) }

// --- BTB prefetchers ---

// Prefetcher is a BTB prefetcher plugged into Config.Prefetcher.
type Prefetcher = core.Prefetcher

// TraceMeta is the static branch metadata Confluence and Shotgun index.
type TraceMeta = core.TraceMeta

// BuildMeta precomputes prefetcher metadata for a trace.
func BuildMeta(t *Trace) *TraceMeta { return core.BuildMeta(t.AccessStream()) }

// NewConfluence builds the Confluence-style BTB prefetcher.
func NewConfluence(meta *TraceMeta) Prefetcher { return prefetch.NewConfluence(meta) }

// NewShotgun builds the Shotgun-style BTB prefetcher (combine with
// Config.ShotgunPartition).
func NewShotgun(meta *TraceMeta) Prefetcher { return prefetch.NewShotgun(meta) }

// TwigConfig tunes Twig training.
type TwigConfig = prefetch.TwigConfig

// TrainTwig trains the profile-guided Twig BTB prefetcher on a trace.
func TrainTwig(t *Trace, cfg TwigConfig) Prefetcher { return prefetch.TrainTwig(t, cfg) }
